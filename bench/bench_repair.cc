// Experiments E4/E5/E6 (Theorem 1.2): impromptu repair on an asynchronous
// network.
//
//  E4: MST tree-edge deletion, expected O(n log n / log log n) messages.
//  E5: ST tree-edge deletion, expected O(n) messages.
//  E6: insertion / weight decrease, deterministic O(n) messages.
// All compared against the naive probe-everything baseline (Theta(m_T)).
#include "baseline/naive_repair.h"
#include "bench_util.h"
#include "core/session.h"

namespace kkt::bench {
namespace {

// Repair ops run through a MaintenanceSession (the churn engine's dispatch
// path), addressed by endpoints exactly as a recorded trace would. The
// naive-baseline variants keep driving the forest directly -- their point
// is the search cost, not the dispatch.
core::OpRecord apply_op(World& w, core::ForestKind kind,
                        const core::UpdateOp& op) {
  core::MaintenanceSession session(*w.g, *w.forest, *w.net, kind);
  return session.apply(op);
}

// Average over several random tree-edge deletions (each on a fresh world so
// the forest stays the exact MSF).
template <typename OpFn>
void run_delete_sweep(benchmark::State& state, std::size_t n, std::size_t m,
                      OpFn op) {
  constexpr int kOps = 10;
  for (auto _ : state) {
    sim::Metrics total;
    for (int i = 0; i < kOps; ++i) {
      World w = make_gnm_world(n, m, 70 + i, NetKind::kAsync);
      mark_msf(w);
      const auto tree = w.forest->marked_edges();
      op(w, tree[(7 * i) % tree.size()]);
      total += w.net->metrics();
    }
    total.messages /= kOps;
    total.rounds /= kOps;
    total.broadcast_echoes /= kOps;
    total.message_bits /= kOps;
    report(state, total, n, m);
  }
}

void BM_Repair_DeleteMst(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 8 * n;
  run_delete_sweep(state, n, m, [](World& w, graph::EdgeIdx victim) {
    const graph::Edge& ed = w.g->edge(victim);
    apply_op(w, core::ForestKind::kMst, core::UpdateOp::erase(ed.u, ed.v));
  });
}
BENCHMARK(BM_Repair_DeleteMst)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Repair_DeleteSt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 8 * n;
  run_delete_sweep(state, n, m, [](World& w, graph::EdgeIdx victim) {
    const graph::Edge& ed = w.g->edge(victim);
    apply_op(w, core::ForestKind::kSt, core::UpdateOp::erase(ed.u, ed.v));
  });
}
BENCHMARK(BM_Repair_DeleteSt)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Naive baseline: probe every edge incident to the orphaned tree.
void BM_Repair_DeleteNaive(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 8 * n;
  run_delete_sweep(state, n, m, [](World& w, graph::EdgeIdx victim) {
    const graph::NodeId root = w.g->edge(victim).u;
    w.g->remove_edge(victim);
    w.forest->clear_edge(victim);
    const auto res = baseline::naive_find_min_cut(*w.net, *w.forest, root);
    if (res.found) {
      // Mark directly; the baseline's point is the search cost.
      for (graph::EdgeIdx e : w.g->alive_edge_indices()) {
        if (w.g->edge_num(e) == res.edge_num) w.forest->mark_edge(e);
      }
    }
  });
}
BENCHMARK(BM_Repair_DeleteNaive)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// E4 density independence: deletion cost vs m at fixed n (KKT flat, naive
// linear).
void BM_Repair_DeleteMst_DensitySweep(benchmark::State& state) {
  const std::size_t n = 256;
  const auto m = static_cast<std::size_t>(state.range(0));
  run_delete_sweep(state, n, m, [](World& w, graph::EdgeIdx victim) {
    const graph::Edge& ed = w.g->edge(victim);
    apply_op(w, core::ForestKind::kMst, core::UpdateOp::erase(ed.u, ed.v));
  });
}
BENCHMARK(BM_Repair_DeleteMst_DensitySweep)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(32640)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_Repair_DeleteNaive_DensitySweep(benchmark::State& state) {
  const std::size_t n = 256;
  const auto m = static_cast<std::size_t>(state.range(0));
  run_delete_sweep(state, n, m, [](World& w, graph::EdgeIdx victim) {
    const graph::NodeId root = w.g->edge(victim).u;
    w.g->remove_edge(victim);
    w.forest->clear_edge(victim);
    baseline::naive_find_min_cut(*w.net, *w.forest, root);
  });
}
BENCHMARK(BM_Repair_DeleteNaive_DensitySweep)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(32640)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// E4b (extension): batched deletions -- k tree edges removed at once,
// repaired with parallel Boruvka-completion phases. Compare rounds (the
// parallel win) and messages against k sequential delete_edge calls.
void BM_Repair_DeleteBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 256, m = 8 * n;
  for (auto _ : state) {
    std::uint64_t batch_msgs = 0, batch_rounds = 0;
    std::uint64_t seq_msgs = 0, seq_rounds = 0;
    for (int i = 0; i < 5; ++i) {
      const auto pick_batch = [&](World& w) {
        util::Rng rng(500 + i);
        std::vector<graph::EdgeIdx> pool = w.forest->marked_edges();
        std::vector<graph::EdgeIdx> batch;
        while (batch.size() < k) {
          const std::size_t j = rng.below(pool.size());
          batch.push_back(pool[j]);
          pool[j] = pool.back();
          pool.pop_back();
        }
        return batch;
      };
      {
        World w = make_gnm_world(n, m, 90 + i, NetKind::kAsync);
        mark_msf(w);
        core::DynamicForest dyn(*w.g, *w.forest, *w.net,
                                core::ForestKind::kMst);
        const auto out = dyn.delete_batch(pick_batch(w));
        batch_msgs += out.messages;
        batch_rounds += out.rounds;
      }
      {
        World w = make_gnm_world(n, m, 90 + i, NetKind::kAsync);
        mark_msf(w);
        core::DynamicForest dyn(*w.g, *w.forest, *w.net,
                                core::ForestKind::kMst);
        for (graph::EdgeIdx e : pick_batch(w)) {
          const auto out = dyn.delete_edge(e);
          seq_msgs += out.messages;
          seq_rounds += out.rounds;
        }
      }
    }
    state.counters["k"] = static_cast<double>(k);
    state.counters["batch_messages"] = static_cast<double>(batch_msgs) / 5;
    state.counters["batch_rounds"] = static_cast<double>(batch_rounds) / 5;
    state.counters["seq_messages"] = static_cast<double>(seq_msgs) / 5;
    state.counters["seq_rounds"] = static_cast<double>(seq_rounds) / 5;
  }
}
BENCHMARK(BM_Repair_DeleteBatch)
    ->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// E6: insertion repair, deterministic O(n).
void BM_Repair_Insert(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = 8 * n;
  constexpr int kOps = 10;
  for (auto _ : state) {
    sim::Metrics total;
    for (int i = 0; i < kOps; ++i) {
      World w = make_gnm_world(n, m, 80 + i, NetKind::kAsync);
      mark_msf(w);
      util::Rng pick(90 + i);
      graph::NodeId u = 0, v = 0;
      do {
        u = static_cast<graph::NodeId>(pick.below(n));
        v = static_cast<graph::NodeId>(pick.below(n));
      } while (u == v || w.g->find_edge(u, v).has_value());
      apply_op(w, core::ForestKind::kMst,
               core::UpdateOp::insert(u, v, 1 + pick.below(1u << 20)));
      total += w.net->metrics();
    }
    total.messages /= kOps;
    total.rounds /= kOps;
    report(state, total, n, m);
  }
}
BENCHMARK(BM_Repair_Insert)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Arg(1024)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kkt::bench

KKT_BENCH_MAIN();
