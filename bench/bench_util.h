// Shared helpers for the experiment harnesses (bench/).
//
// These benchmarks measure *model costs* -- messages, bits, rounds,
// broadcast-and-echoes -- which are deterministic given the seed, not wall
// time. Each experiment reports its observables as benchmark counters; the
// rows printed by these binaries are the reproduction's "tables" (see
// EXPERIMENTS.md for the mapping to the paper's claims).
//
// World construction lives in the kkt_scenario library; this header only
// adds the benchmark-counter plumbing. The net-seed salt of the legacy
// bench helpers is scenario::kNetSeedSalt, so fixed-seed counter values are
// unchanged by the rebase.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/mst_oracle.h"
#include "report/schema.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace kkt::bench {

using scenario::NetKind;
using scenario::World;

// KKT_SHARDS=N makes every bench world run its network N-way sharded
// (sim/shard.h). Counters are bit-identical at any N by the determinism
// contract, so the env knob only moves wall time -- safe to set under
// KKT_BENCH_WALL without touching artifact counters.
inline sim::ShardSpec env_shard_spec() {
  sim::ShardSpec spec;
  if (const char* s = std::getenv("KKT_SHARDS"); s != nullptr && *s != '\0') {
    spec.shards = std::atoi(s);
    if (spec.shards < 1) spec.shards = 1;
  }
  return spec;
}

// Connected G(n, m) scenario with the bench seed discipline (graph from
// `seed`, network from seed ^ kNetSeedSalt).
inline scenario::Scenario gnm_scenario(std::size_t n, std::size_t m,
                                       std::uint64_t seed,
                                       NetKind kind = NetKind::kSync) {
  scenario::Scenario sc;
  sc.graph = scenario::GraphSpec::gnm(n, m);
  sc.net.kind = kind;
  sc.net.shards = env_shard_spec();
  sc.seed = seed;
  return sc;
}

inline World make_world(std::unique_ptr<graph::Graph> g, std::uint64_t seed,
                        NetKind kind = NetKind::kSync) {
  scenario::NetSpec net;
  net.kind = kind;
  net.shards = env_shard_spec();
  return scenario::make_world(std::move(g), net, seed);
}

inline World make_gnm_world(std::size_t n, std::size_t m, std::uint64_t seed,
                            NetKind kind = NetKind::kSync) {
  return scenario::make_world(gnm_scenario(n, m, seed, kind));
}

// Marks the oracle MSF (used to set up repair scenarios).
inline void mark_msf(World& w) { w.mark_msf(); }

// Publishes the standard observables of a finished run.
inline void report(benchmark::State& state, const sim::Metrics& m,
                   std::size_t n, std::size_t edges) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(edges);
  state.counters["messages"] = static_cast<double>(m.messages);
  state.counters["msgs_per_n"] =
      static_cast<double>(m.messages) / static_cast<double>(n);
  state.counters["msgs_per_m"] =
      edges ? static_cast<double>(m.messages) / static_cast<double>(edges)
            : 0.0;
  state.counters["rounds"] = static_cast<double>(m.rounds);
  state.counters["bcast_echoes"] = static_cast<double>(m.broadcast_echoes);
  state.counters["bits"] = static_cast<double>(m.message_bits);
  state.counters["peak_state_bits"] =
      static_cast<double>(m.peak_node_state_bits);
  // Per-tag budget split: which protocol spends the envelopes and the bits.
  for (std::size_t t = 0; t < m.per_tag.size(); ++t) {
    if (m.per_tag[t] == 0) continue;
    const char* name = sim::tag_name(static_cast<sim::Tag>(t));
    state.counters[std::string("msgs.") + name] =
        static_cast<double>(m.per_tag[t]);
    state.counters[std::string("bits.") + name] =
        static_cast<double>(m.per_tag_bits[t]);
  }
}

// ---------------------------------------------------------------------------
// Unified artifact plumbing (docs/RESULT_SCHEMA.md)
// ---------------------------------------------------------------------------
//
// Every bench binary runs through KKT_BENCH_MAIN() below: the console
// output is unchanged, but each finished run's name and counters are also
// captured, and when the KKT_BENCH_OUT environment variable names a file
// the whole session is written there in the unified result schema --
// deterministic counters only, no wall-clock noise, so BENCH_*.json
// artifacts share one version header and diff cleanly across commits.
// (Google Benchmark's own --benchmark_out still works; artifacts written
// that way are readable via the schema parser's one-release legacy shim.)
//
// Wall-clock capture is opt-in: KKT_BENCH_WALL=k (k >= 1; any other value
// means k = 5) runs the whole suite k+1 times -- one discarded warm-up
// pass, then k timed passes -- and stamps each record with the median
// per-iteration wall time (schema v2 wall_ns/iters). Counters are
// deterministic, so the extra passes change nothing else; the median over
// warm passes is what makes wall_ns usable as a gate input on a noisy box.

class RecordingReporter : public benchmark::ConsoleReporter {
 public:
  explicit RecordingReporter(bool quiet = false) : quiet_(quiet) {}

  bool ReportContext(const Context& context) override {
    return quiet_ ? true : ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      report::RunRecord rec;
      rec.name = run.benchmark_name();
      for (const auto& [key, counter] : run.counters) {
        rec.counters[key] = counter.value;
      }
      if (run.iterations > 0) {
        rec.iters = static_cast<std::uint64_t>(run.iterations);
        rec.wall_ns = static_cast<std::uint64_t>(
            run.real_accumulated_time * 1e9 /
            static_cast<double>(run.iterations));
      }
      records_.push_back(std::move(rec));
    }
    if (!quiet_) ConsoleReporter::ReportRuns(runs);
  }

  std::vector<report::RunRecord> take_records() {
    return std::move(records_);
  }

 private:
  std::vector<report::RunRecord> records_;
  bool quiet_ = false;
};

// Lower median of the wall_ns column across timed passes, folded into the
// final pass's records (counters are identical across passes by the
// determinism contract, so only the wall column varies).
inline std::vector<report::RunRecord> fold_median_wall(
    std::vector<std::vector<report::RunRecord>> passes) {
  std::vector<report::RunRecord> out = std::move(passes.back());
  for (std::size_t i = 0; i < out.size(); ++i) {
    std::vector<std::uint64_t> samples;
    samples.reserve(passes.size());
    for (const auto& pass : passes) {
      if (i < pass.size() && pass[i].name == out[i].name) {
        samples.push_back(pass[i].wall_ns);
      }
    }
    if (!samples.empty()) {
      std::sort(samples.begin(), samples.end());
      out[i].wall_ns = samples[(samples.size() - 1) / 2];
    }
  }
  return out;
}

inline int bench_main(int argc, char** argv) {
  std::string tool = argc > 0 && argv[0] ? argv[0] : "bench";
  if (const std::size_t slash = tool.find_last_of('/');
      slash != std::string::npos) {
    tool = tool.substr(slash + 1);
  }
  // --benchmark_format selects the *display* reporter; our recording
  // reporter is console-flavored, so a non-console request (the legacy
  // JSON-on-stdout recipe) falls back to stock BENCHMARK_MAIN behavior --
  // honoring the flag but recording nothing.
  bool custom_display = true;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i] ? argv[i] : "";
    if (arg.rfind("--benchmark_format", 0) == 0 &&
        arg != "--benchmark_format=console") {
      custom_display = false;
    }
  }
  int wall_passes = 0;
  if (const char* wall = std::getenv("KKT_BENCH_WALL");
      custom_display && wall && *wall) {
    wall_passes = std::atoi(wall);
    if (wall_passes < 1) wall_passes = 5;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::vector<report::RunRecord> records;
  if (custom_display && wall_passes > 0) {
    {
      RecordingReporter warmup(/*quiet=*/true);  // discarded warm-up pass
      benchmark::RunSpecifiedBenchmarks(&warmup);
    }
    std::vector<std::vector<report::RunRecord>> passes;
    passes.reserve(wall_passes);
    for (int i = 0; i < wall_passes; ++i) {
      RecordingReporter pass(/*quiet=*/i + 1 < wall_passes);
      benchmark::RunSpecifiedBenchmarks(&pass);
      passes.push_back(pass.take_records());
    }
    records = fold_median_wall(std::move(passes));
  } else if (custom_display) {
    RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    records = reporter.take_records();
    // Default mode keeps artifacts byte-deterministic: no wall column.
    for (report::RunRecord& r : records) {
      r.wall_ns = 0;
      r.iters = 0;
    }
  } else {
    if (std::getenv("KKT_BENCH_OUT") != nullptr) {
      std::fprintf(stderr,
                   "warning: KKT_BENCH_OUT is ignored when "
                   "--benchmark_format is not console\n");
    }
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  if (const char* out = std::getenv("KKT_BENCH_OUT");
      custom_display && out && *out) {
    report::ResultFile file;
    file.tool = tool;
    file.records = std::move(records);
    if (!report::write_results_file(out, file)) {
      std::fprintf(stderr, "error: cannot write %s\n", out);
      return 1;
    }
    std::fprintf(stderr, "wrote %s: %zu records (kkt_result_schema v%d)\n",
                 out, file.records.size(), report::kResultSchemaVersion);
  }
  return 0;
}

}  // namespace kkt::bench

// Drop-in replacement for BENCHMARK_MAIN() that adds the unified-artifact
// flush; every bench in bench/ uses this.
#define KKT_BENCH_MAIN()                            \
  int main(int argc, char** argv) {                 \
    return kkt::bench::bench_main(argc, argv);      \
  }                                                 \
  static_assert(true, "require a trailing semicolon")
