// Shared helpers for the experiment harnesses (bench/).
//
// These benchmarks measure *model costs* -- messages, bits, rounds,
// broadcast-and-echoes -- which are deterministic given the seed, not wall
// time. Each experiment reports its observables as benchmark counters; the
// rows printed by these binaries are the reproduction's "tables" (see
// EXPERIMENTS.md for the mapping to the paper's claims).
//
// World construction lives in the kkt_scenario library; this header only
// adds the benchmark-counter plumbing. The net-seed salt of the legacy
// bench helpers is scenario::kNetSeedSalt, so fixed-seed counter values are
// unchanged by the rebase.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <utility>

#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/mst_oracle.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace kkt::bench {

using scenario::NetKind;
using scenario::World;

// Connected G(n, m) scenario with the bench seed discipline (graph from
// `seed`, network from seed ^ kNetSeedSalt).
inline scenario::Scenario gnm_scenario(std::size_t n, std::size_t m,
                                       std::uint64_t seed,
                                       NetKind kind = NetKind::kSync) {
  scenario::Scenario sc;
  sc.graph = scenario::GraphSpec::gnm(n, m);
  sc.net.kind = kind;
  sc.seed = seed;
  return sc;
}

inline World make_world(std::unique_ptr<graph::Graph> g, std::uint64_t seed,
                        NetKind kind = NetKind::kSync) {
  scenario::NetSpec net;
  net.kind = kind;
  return scenario::make_world(std::move(g), net, seed);
}

inline World make_gnm_world(std::size_t n, std::size_t m, std::uint64_t seed,
                            NetKind kind = NetKind::kSync) {
  return scenario::make_world(gnm_scenario(n, m, seed, kind));
}

// Marks the oracle MSF (used to set up repair scenarios).
inline void mark_msf(World& w) { w.mark_msf(); }

// Publishes the standard observables of a finished run.
inline void report(benchmark::State& state, const sim::Metrics& m,
                   std::size_t n, std::size_t edges) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(edges);
  state.counters["messages"] = static_cast<double>(m.messages);
  state.counters["msgs_per_n"] =
      static_cast<double>(m.messages) / static_cast<double>(n);
  state.counters["msgs_per_m"] =
      edges ? static_cast<double>(m.messages) / static_cast<double>(edges)
            : 0.0;
  state.counters["rounds"] = static_cast<double>(m.rounds);
  state.counters["bcast_echoes"] = static_cast<double>(m.broadcast_echoes);
  state.counters["bits"] = static_cast<double>(m.message_bits);
  state.counters["peak_state_bits"] =
      static_cast<double>(m.peak_node_state_bits);
  // Per-tag budget split: which protocol spends the envelopes and the bits.
  for (std::size_t t = 0; t < m.per_tag.size(); ++t) {
    if (m.per_tag[t] == 0) continue;
    const char* name = sim::tag_name(static_cast<sim::Tag>(t));
    state.counters[std::string("msgs.") + name] =
        static_cast<double>(m.per_tag[t]);
    state.counters[std::string("bits.") + name] =
        static_cast<double>(m.per_tag_bits[t]);
  }
}

}  // namespace kkt::bench
