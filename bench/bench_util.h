// Shared helpers for the experiment harnesses (bench/).
//
// These benchmarks measure *model costs* -- messages, bits, rounds,
// broadcast-and-echoes -- which are deterministic given the seed, not wall
// time. Each experiment reports its observables as benchmark counters; the
// rows printed by these binaries are the reproduction's "tables" (see
// EXPERIMENTS.md for the mapping to the paper's claims).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>

#include <memory>

#include "graph/forest.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/mst_oracle.h"
#include "sim/async_network.h"
#include "sim/sync_network.h"
#include "util/rng.h"

namespace kkt::bench {

struct World {
  std::unique_ptr<graph::Graph> g;
  std::unique_ptr<graph::MarkedForest> forest;
  std::unique_ptr<sim::Network> net;
};

enum class NetKind { kSync, kAsync };

inline World make_world(std::unique_ptr<graph::Graph> g, std::uint64_t seed,
                        NetKind kind = NetKind::kSync) {
  World w;
  w.g = std::move(g);
  w.forest = std::make_unique<graph::MarkedForest>(*w.g);
  if (kind == NetKind::kSync) {
    w.net = std::make_unique<sim::SyncNetwork>(*w.g, seed);
  } else {
    w.net = std::make_unique<sim::AsyncNetwork>(*w.g, seed);
  }
  return w;
}

inline World make_gnm_world(std::size_t n, std::size_t m, std::uint64_t seed,
                            NetKind kind = NetKind::kSync) {
  util::Rng rng(seed);
  auto g = std::make_unique<graph::Graph>(
      graph::random_connected_gnm(n, m, {1u << 20}, rng));
  return make_world(std::move(g), seed ^ 0x51ed, kind);
}

// Marks the oracle MSF (used to set up repair scenarios).
inline void mark_msf(World& w) {
  for (graph::EdgeIdx e : graph::kruskal_msf(*w.g)) w.forest->mark_edge(e);
}

// Publishes the standard observables of a finished run.
inline void report(benchmark::State& state, const sim::Metrics& m,
                   std::size_t n, std::size_t edges) {
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(edges);
  state.counters["messages"] = static_cast<double>(m.messages);
  state.counters["msgs_per_n"] =
      static_cast<double>(m.messages) / static_cast<double>(n);
  state.counters["msgs_per_m"] =
      edges ? static_cast<double>(m.messages) / static_cast<double>(edges)
            : 0.0;
  state.counters["rounds"] = static_cast<double>(m.rounds);
  state.counters["bcast_echoes"] = static_cast<double>(m.broadcast_echoes);
  state.counters["bits"] = static_cast<double>(m.message_bits);
  state.counters["peak_state_bits"] =
      static_cast<double>(m.peak_node_state_bits);
}

}  // namespace kkt::bench
