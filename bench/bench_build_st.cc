// Experiment E3 (Theorem 1.1, Lemma 6): ST construction, O(n log n)
// messages vs the Theta(m) flooding baseline.
#include "baseline/flood_st.h"
#include "bench_util.h"
#include "core/build_st.h"

namespace kkt::bench {
namespace {

void BM_BuildSt_Kkt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n * (n - 1) / 2;  // complete: worst for flooding
  for (auto _ : state) {
    World w = make_gnm_world(n, m, 60);
    const core::BuildStStats stats = core::build_st(*w.net, *w.forest);
    if (!stats.spanning) state.SkipWithError("did not span");
    report(state, w.net->metrics(), n, m);
    state.counters["phases"] = static_cast<double>(stats.phases);
    std::size_t cycles = 0;
    for (const auto& ph : stats.per_phase) cycles += ph.cycles_detected;
    state.counters["cycles_detected"] = static_cast<double>(cycles);
  }
}
BENCHMARK(BM_BuildSt_Kkt)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BuildSt_Flooding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t m = n * (n - 1) / 2;
  for (auto _ : state) {
    World w = make_gnm_world(n, m, 60);
    const auto stats = baseline::flood_build_st(*w.net, *w.forest);
    if (!stats.spanning) state.SkipWithError("did not span");
    report(state, w.net->metrics(), n, m);
  }
}
BENCHMARK(BM_BuildSt_Flooding)
    ->Arg(64)->Arg(128)->Arg(256)->Arg(512)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Density sweep at fixed n: KKT-ST flat in m, flooding linear in m.
void BM_BuildSt_Kkt_DensitySweep(benchmark::State& state) {
  const std::size_t n = 256;
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    World w = make_gnm_world(n, m, 61);
    core::build_st(*w.net, *w.forest);
    report(state, w.net->metrics(), n, m);
  }
}
BENCHMARK(BM_BuildSt_Kkt_DensitySweep)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(32640)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

void BM_BuildSt_Flooding_DensitySweep(benchmark::State& state) {
  const std::size_t n = 256;
  const auto m = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    World w = make_gnm_world(n, m, 61);
    baseline::flood_build_st(*w.net, *w.forest);
    report(state, w.net->metrics(), n, m);
  }
}
BENCHMARK(BM_BuildSt_Flooding_DensitySweep)
    ->Arg(512)->Arg(2048)->Arg(8192)->Arg(32640)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace kkt::bench

KKT_BENCH_MAIN();
