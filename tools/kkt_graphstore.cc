// kkt_graphstore CLI: pack graphs into the .kkg mmap store and inspect
// store files (format in graph/store.h and docs/GRAPH_STORE.md).
//
//   kkt_graphstore pack --family F --n N [--seed S] [--m M] [--aux A]
//                       [--param P] [--maxw W] --out FILE
//       Generate a scenario family (any name scenario::family_from_name
//       accepts, including the implicit families) and pack its alive edges.
//   kkt_graphstore pack --text graph.txt [--seed S] --out FILE
//       Pack a DIMACS-flavored text graph (graph/io.h).
//   kkt_graphstore info FILE
//       Print the header fields, then run the full loader validation and
//       report OK or the diagnostic. Exit 0 only for a valid store.
//
// Exit codes: 0 ok, 1 validation/pack failure, 2 usage error.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <optional>
#include <string>

#include "graph/graph.h"
#include "graph/io.h"
#include "graph/store.h"
#include "scenario/scenario.h"
#include "util/rng.h"

namespace {

int usage() {
  std::cerr
      << "usage: kkt_graphstore pack --family F --n N [--seed S] [--m M]"
         " [--aux A] [--param P] [--maxw W] --out FILE\n"
         "       kkt_graphstore pack --text FILE [--seed S] --out FILE\n"
         "       kkt_graphstore info FILE\n";
  return 2;
}

std::uint64_t get_u32_at(const unsigned char* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 4; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

std::uint64_t get_u64_at(const unsigned char* p) {
  std::uint64_t x = 0;
  for (int i = 0; i < 8; ++i) x |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return x;
}

int cmd_info(const std::string& path) {
  // Raw header dump first (works even for files the loader rejects), then
  // the loader's verdict.
  unsigned char header[kkt::graph::kStoreHeaderBytes] = {};
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::cerr << "kkt_graphstore: cannot open " << path << "\n";
    return 1;
  }
  const std::size_t got = std::fread(header, 1, sizeof(header), f);
  std::fclose(f);
  if (got < sizeof(header)) {
    std::cerr << "kkt_graphstore: " << path << ": file shorter than a header ("
              << got << " bytes)\n";
    return 1;
  }
  std::cout << "file:      " << path << "\n";
  std::cout << "magic:     0x" << std::hex << get_u32_at(header) << std::dec
            << (get_u32_at(header) == kkt::graph::kStoreMagic ? " (KKTG)"
                                                              : " (BAD)")
            << "\n";
  std::cout << "version:   " << get_u32_at(header + 4) << "\n";
  std::cout << "flags:     " << get_u32_at(header + 8) << "\n";
  std::cout << "id_bits:   " << get_u32_at(header + 12) << "\n";
  std::cout << "n:         " << get_u64_at(header + 16) << "\n";
  std::cout << "m:         " << get_u64_at(header + 24) << "\n";
  std::cout << "ext_off:   " << get_u64_at(header + 32) << "\n";
  std::cout << "off_off:   " << get_u64_at(header + 40) << "\n";
  std::cout << "arena_off: " << get_u64_at(header + 48) << "\n";
  std::cout << "edges_off: " << get_u64_at(header + 56) << "\n";
  std::cout << "file_size: " << get_u64_at(header + 64) << "\n";

  std::string error;
  const auto store = kkt::graph::MappedStore::open(path, &error);
  if (store == nullptr) {
    std::cout << "valid:     NO -- " << error << "\n";
    return 1;
  }
  std::cout << "valid:     yes (" << store->node_count() << " nodes, "
            << store->edge_count() << " edges)\n";
  return 0;
}

struct PackArgs {
  std::string family;
  std::string text;
  std::string out;
  std::size_t n = 0;
  std::size_t m = 0;
  std::size_t aux = 0;
  double param = 0.0;
  std::uint64_t seed = 1;
  kkt::graph::Weight maxw = 1u << 20;
};

std::optional<kkt::graph::Graph> build_from_args(const PackArgs& a,
                                                 std::string* error) {
  if (!a.text.empty()) {
    kkt::util::Rng rng(a.seed);
    return kkt::graph::read_graph_file(a.text, rng, error);
  }
  const auto fam = kkt::scenario::family_from_name(a.family);
  if (!fam) {
    *error = "unknown family '" + a.family + "'";
    return std::nullopt;
  }
  kkt::scenario::GraphSpec spec;
  spec.family = *fam;
  spec.n = a.n;
  spec.m = a.m;
  spec.aux = a.aux;
  spec.param = a.param;
  spec.weights = {a.maxw};
  spec.clamp_m = true;
  // Materialised rows pack directly; the implicit backend would work too
  // (identical bytes), but the pack enumerates all edges anyway.
  if (kkt::scenario::family_is_implicit(*fam)) {
    spec.backend = kkt::scenario::GraphBackend::kAdjacency;
  }
  if (spec.n < 1) {
    *error = "--n is required for --family";
    return std::nullopt;
  }
  return kkt::scenario::build_graph(spec, a.seed);
}

int cmd_pack(const PackArgs& a) {
  if (a.out.empty() || (a.family.empty() == a.text.empty())) return usage();
  std::string error;
  std::optional<kkt::graph::Graph> g = build_from_args(a, &error);
  if (!g) {
    std::cerr << "kkt_graphstore: " << error << "\n";
    return 1;
  }
  if (!kkt::graph::pack_store(a.out, *g, &error)) {
    std::cerr << "kkt_graphstore: " << error << "\n";
    return 1;
  }
  std::cout << "packed " << g->node_count() << " nodes, " << g->edge_count()
            << " edges -> " << a.out << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  if (cmd == "info") {
    if (argc != 3) return usage();
    return cmd_info(argv[2]);
  }
  if (cmd != "pack") return usage();

  PackArgs a;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--family" && (v = value())) {
      a.family = v;
    } else if (arg == "--text" && (v = value())) {
      a.text = v;
    } else if (arg == "--out" && (v = value())) {
      a.out = v;
    } else if (arg == "--n" && (v = value())) {
      a.n = std::stoull(v);
    } else if (arg == "--m" && (v = value())) {
      a.m = std::stoull(v);
    } else if (arg == "--aux" && (v = value())) {
      a.aux = std::stoull(v);
    } else if (arg == "--param" && (v = value())) {
      a.param = std::stod(v);
    } else if (arg == "--seed" && (v = value())) {
      a.seed = std::stoull(v);
    } else if (arg == "--maxw" && (v = value())) {
      a.maxw = std::stoull(v);
    } else {
      return usage();
    }
  }
  return cmd_pack(a);
}
