// kkt_report: the experiment docs are build outputs.
//
//   kkt_report run   [--out FILE] [--sizes 64,128,256,512] [--seeds K]
//                    [--first-seed S] [--ops K] [--threads T]
//                    [--net sync|async|adversarial] [--gnm DENSITY]
//                    [--xl-sizes 65536,262144,1048576] [--xl-links K]
//                    [--xl-ghs-cap N] [--measure]
//       Runs the KKT-vs-baseline head-to-head grid
//       (scenario::run_headtohead) and writes the unified artifact
//       (default BENCH_headtohead.json). Deterministic: the same flags
//       produce a byte-identical artifact on every run. --xl-sizes adds
//       the web-scale build_mst_xl task (implicit grid+long-links family,
//       kkt vs ghs, one run per cell); --measure additionally stamps the
//       schema-v2 wall_ns / peak_rss_kb observables onto every cell, which
//       trades the byte-determinism of the artifact for telemetry -- keep
//       it off for committed artifacts (docs/RESULT_SCHEMA.md).
//
//   kkt_report gen   [--in FILE] [--docs DIR] [--experiments FILE]
//       Renders the artifact into DIR/headtohead.md (default
//       docs/experiments) and splices the exponent summary between the
//       generated markers of the EXPERIMENTS file (skipped when
//       --experiments is not given).
//
//   kkt_report check [--in FILE] [--docs DIR] [--experiments FILE]
//       Renders into memory and byte-compares against the files on disk;
//       exits 1 listing every drifted file. This is the CI report stage's
//       "docs match the artifact" gate.
//
//   kkt_report perf  --baseline FILE --current FILE
//                    [--tolerance PCT] [--wall-gate hard|advisory|off]
//       The perf trend gate (docs/PERF.md). Counters must match the
//       baseline EXACTLY -- any drift is a model-cost change and fails
//       regardless of flags. Wall times (schema v2 wall_ns) may regress by
//       up to PCT percent (default 25) before the gate trips; --wall-gate
//       picks what a trip means: hard (exit 1, the local default per
//       docs/PERF.md), advisory (warn, exit 0 -- for shared CI runners
//       whose wall clock is not trustworthy), or off.
//
// The artifact format is docs/RESULT_SCHEMA.md; --in also accepts the
// legacy Google Benchmark JSON via the one-release read shim.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "report/render.h"
#include "report/schema.h"
#include "scenario/headtohead.h"
#include "util/rusage.h"

namespace {

namespace fs = std::filesystem;

struct Args {
  std::map<std::string, std::string> kv;
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& key, std::uint64_t dflt) const {
    auto it = kv.find(key);
    return it == kv.end() ? dflt
                          : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  bool has(const std::string& key) const { return kv.count(key) != 0; }
};

Args parse_args(int argc, char** argv, int from) {
  Args a;
  for (int i = from; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.substr(0, 2) != "--") continue;
    const std::string key(arg.substr(2));
    if (i + 1 < argc && std::string_view(argv[i + 1]).substr(0, 2) != "--") {
      a.kv.insert_or_assign(key, std::string(argv[++i]));
    } else {
      a.kv.insert_or_assign(key, std::string("1"));
    }
  }
  return a;
}

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> sizes;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) {
      sizes.push_back(std::strtoull(item.c_str(), nullptr, 10));
    }
  }
  return sizes;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, std::string_view text) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return false;
  os.write(text.data(), static_cast<std::streamsize>(text.size()));
  return static_cast<bool>(os);
}

std::string basename_of(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

kkt::scenario::HeadToHeadConfig config_from(const Args& a) {
  kkt::scenario::HeadToHeadConfig cfg;
  if (a.has("sizes")) cfg.sizes = parse_sizes(a.get("sizes", ""));
  if (a.has("gnm")) {
    cfg.complete_graphs = false;
    cfg.density = a.num("gnm", cfg.density);
  }
  if (a.has("net")) {
    const auto kind = kkt::scenario::net_kind_from_name(a.get("net", "sync"));
    if (!kind) {
      std::fprintf(stderr, "error: unknown net kind '%s'\n",
                   a.get("net", "").c_str());
      std::exit(2);
    }
    cfg.net = *kind;
  }
  // --seed is accepted as an alias so the flag vocabulary matches
  // `kkt_lab report`.
  cfg.first_seed = a.num("first-seed", a.num("seed", cfg.first_seed));
  cfg.seeds = static_cast<int>(a.num("seeds", cfg.seeds));
  cfg.ops = static_cast<int>(a.num("ops", cfg.ops));
  cfg.threads = static_cast<int>(a.num("threads", cfg.threads));
  if (a.has("xl-sizes")) cfg.xl_sizes = parse_sizes(a.get("xl-sizes", ""));
  cfg.xl_long_links =
      static_cast<std::size_t>(a.num("xl-links", cfg.xl_long_links));
  cfg.xl_ghs_cap =
      static_cast<std::size_t>(a.num("xl-ghs-cap", cfg.xl_ghs_cap));
  cfg.measure = a.has("measure");
  return cfg;
}

int cmd_run(const Args& a) {
  const std::string out = a.get("out", "BENCH_headtohead.json");
  const kkt::scenario::HeadToHeadConfig cfg = config_from(a);
  if (cfg.sizes.size() < 2) {
    std::fprintf(stderr, "error: need at least two --sizes to fit a slope\n");
    return 2;
  }
  for (const std::size_t n : cfg.sizes) {
    if (n < 2) {
      std::fprintf(stderr,
                   "error: every --sizes entry must be >= 2 (got %zu)\n", n);
      return 2;
    }
  }
  const kkt::scenario::HeadToHeadResult result =
      kkt::scenario::run_headtohead(cfg);
  const kkt::report::ResultFile file = result.to_result_file();
  if (!kkt::report::write_results_file(out, file)) {
    std::fprintf(stderr, "error: cannot write %s\n", out.c_str());
    return 2;
  }
  std::printf("wrote %s: %zu records (schema v%d)\n", out.c_str(),
              file.records.size(), file.schema_version);
  for (const auto& fit : result.fits) {
    std::printf("  %-14s %-6s messages ~ n^%.3f  (r2 %.3f)\n",
                fit.task.c_str(), fit.algo.c_str(), fit.exponent, fit.r2);
  }
  if (cfg.measure) {
    std::printf("peak_rss_kb=%llu\n",
                static_cast<unsigned long long>(kkt::util::peak_rss_kb()));
  }
  return 0;
}

// The rendered outputs of one artifact: path -> expected contents. The gen
// and check subcommands differ only in what they do with this map.
std::map<std::string, std::string> render_outputs(
    const kkt::report::ResultFile& file, const Args& a, bool* ok) {
  *ok = true;
  std::map<std::string, std::string> outputs;
  const std::string docs_dir = a.get("docs", "docs/experiments");
  const std::string source = basename_of(a.get("in", "BENCH_headtohead.json"));
  outputs[docs_dir + "/headtohead.md"] =
      kkt::report::render_headtohead_markdown(file, source);

  const std::string experiments = a.get("experiments", "");
  if (!experiments.empty()) {
    const auto current = read_file(experiments);
    if (!current) {
      std::fprintf(stderr, "error: cannot read %s\n", experiments.c_str());
      *ok = false;
      return outputs;
    }
    const auto spliced = kkt::report::splice_generated_block(
        *current, kkt::report::render_experiments_block(file));
    if (!spliced) {
      std::fprintf(stderr,
                   "error: %s lacks the generated-block markers\n  %s\n  %s\n",
                   experiments.c_str(),
                   std::string(kkt::report::kGeneratedBeginMarker).c_str(),
                   std::string(kkt::report::kGeneratedEndMarker).c_str());
      *ok = false;
      return outputs;
    }
    outputs[experiments] = *spliced;
  }
  return outputs;
}

std::optional<kkt::report::ResultFile> load_artifact(const Args& a) {
  const std::string in = a.get("in", "BENCH_headtohead.json");
  std::string err;
  auto file = kkt::report::read_results_file(in, &err);
  if (!file) std::fprintf(stderr, "error: %s: %s\n", in.c_str(), err.c_str());
  return file;
}

int cmd_gen(const Args& a) {
  const auto file = load_artifact(a);
  if (!file) return 2;
  bool ok = true;
  const auto outputs = render_outputs(*file, a, &ok);
  if (!ok) return 2;
  for (const auto& [path, text] : outputs) {
    const fs::path parent = fs::path(path).parent_path();
    std::error_code ec;
    if (!parent.empty()) fs::create_directories(parent, ec);
    if (!write_file(path, text)) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
  }
  return 0;
}

int cmd_check(const Args& a) {
  const auto file = load_artifact(a);
  if (!file) return 2;
  bool ok = true;
  const auto outputs = render_outputs(*file, a, &ok);
  if (!ok) return 2;
  int drifted = 0;
  for (const auto& [path, text] : outputs) {
    const auto on_disk = read_file(path);
    if (!on_disk) {
      std::fprintf(stderr, "DRIFT: %s missing (run kkt_report gen)\n",
                   path.c_str());
      ++drifted;
    } else if (*on_disk != text) {
      std::fprintf(stderr,
                   "DRIFT: %s does not match the artifact "
                   "(run kkt_report gen and commit)\n",
                   path.c_str());
      ++drifted;
    }
  }
  if (drifted == 0) {
    std::printf("ok: %zu rendered file(s) match the artifact\n",
                outputs.size());
    return 0;
  }
  return 1;
}

// ---------------------------------------------------------------------------
// perf: the wall-clock trend gate (docs/PERF.md)
// ---------------------------------------------------------------------------

std::optional<kkt::report::ResultFile> load_named(const Args& a,
                                                  const std::string& key) {
  if (!a.has(key)) {
    std::fprintf(stderr, "error: perf requires --%s FILE\n", key.c_str());
    return std::nullopt;
  }
  const std::string path = a.get(key, "");
  std::string err;
  auto file = kkt::report::read_results_file(path, &err);
  if (!file) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), err.c_str());
  }
  return file;
}

int cmd_perf(const Args& a) {
  const auto baseline = load_named(a, "baseline");
  const auto current = load_named(a, "current");
  if (!baseline || !current) return 2;
  const double tolerance =
      static_cast<double>(a.num("tolerance", 25));
  const std::string wall_gate = a.get("wall-gate", "hard");
  if (wall_gate != "hard" && wall_gate != "advisory" && wall_gate != "off") {
    std::fprintf(stderr,
                 "error: --wall-gate must be hard, advisory or off\n");
    return 2;
  }

  // Counter gate: the model costs are deterministic, so the record sets
  // must agree bit-for-bit. Any difference is a correctness signal, never
  // noise, and fails unconditionally.
  int counter_drift = 0;
  for (const kkt::report::RunRecord& base : baseline->records) {
    const kkt::report::RunRecord* cur = current->find(base.name);
    if (!cur) {
      std::fprintf(stderr, "PERF-DRIFT: record '%s' missing from current\n",
                   base.name.c_str());
      ++counter_drift;
      continue;
    }
    if (cur->counters != base.counters) {
      ++counter_drift;
      std::fprintf(stderr, "PERF-DRIFT: counters changed for '%s':\n",
                   base.name.c_str());
      for (const auto& [key, val] : base.counters) {
        const auto it = cur->counters.find(key);
        if (it == cur->counters.end()) {
          std::fprintf(stderr, "  %s: %.17g -> (missing)\n", key.c_str(), val);
        } else if (it->second != val) {
          std::fprintf(stderr, "  %s: %.17g -> %.17g\n", key.c_str(), val,
                       it->second);
        }
      }
      for (const auto& [key, val] : cur->counters) {
        if (base.counters.find(key) == base.counters.end()) {
          std::fprintf(stderr, "  %s: (missing) -> %.17g\n", key.c_str(), val);
        }
      }
    }
  }
  for (const kkt::report::RunRecord& cur : current->records) {
    if (!baseline->find(cur.name)) {
      std::fprintf(stderr, "PERF-DRIFT: record '%s' absent from baseline\n",
                   cur.name.c_str());
      ++counter_drift;
    }
  }
  if (counter_drift != 0) {
    std::fprintf(stderr,
                 "FAIL: %d record(s) drifted from the counter baseline "
                 "(model costs are deterministic; investigate before "
                 "re-baselining)\n",
                 counter_drift);
    return 1;
  }

  // Wall gate: compare medians where both sides measured one.
  int regressions = 0;
  int compared = 0;
  for (const kkt::report::RunRecord& base : baseline->records) {
    const kkt::report::RunRecord* cur = current->find(base.name);
    if (!cur || base.wall_ns == 0 || cur->wall_ns == 0) continue;
    ++compared;
    const double ratio = static_cast<double>(cur->wall_ns) /
                         static_cast<double>(base.wall_ns);
    const double delta_pct = (ratio - 1.0) * 100.0;
    const bool slow = delta_pct > tolerance;
    std::printf("  %-44s %12.3f ms -> %12.3f ms  %+7.1f%%%s\n",
                base.name.c_str(),
                static_cast<double>(base.wall_ns) / 1e6,
                static_cast<double>(cur->wall_ns) / 1e6, delta_pct,
                slow ? "  REGRESSION" : "");
    if (slow) ++regressions;
  }
  std::printf("perf: counters exact across %zu record(s); "
              "%d of %d wall time(s) regressed beyond %.0f%%\n",
              baseline->records.size(), regressions, compared, tolerance);
  if (regressions != 0 && wall_gate == "hard") return 1;
  if (regressions != 0 && wall_gate == "advisory") {
    std::fprintf(stderr,
                 "advisory: wall regression(s) detected but the gate is "
                 "advisory on this runner (see docs/PERF.md)\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: kkt_report run|gen|check|perf [--flags]\n"
                 "see the header comment of tools/kkt_report.cc\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const Args a = parse_args(argc, argv, 2);
  if (cmd == "run") return cmd_run(a);
  if (cmd == "gen") return cmd_gen(a);
  if (cmd == "check") return cmd_check(a);
  if (cmd == "perf") return cmd_perf(a);
  std::fprintf(stderr, "error: unknown command '%s'\n", cmd.c_str());
  return 2;
}
