// kkt_lint CLI: scan the repo for determinism/allocation/hygiene rule
// violations (src/lint, rule catalogue in docs/LINT_RULES.md).
//
//   kkt_lint --root <repo>                 # human-readable findings
//   kkt_lint --root <repo> --format=json   # machine-readable findings
//   kkt_lint --root <repo> --out LINT_findings.json   # also write JSON
//   kkt_lint --list-rules                  # rule IDs, one per line
//   kkt_lint --extra <file> ...            # scan extra files with every
//                                          # content rule enabled (CI uses
//                                          # this to prove the gate trips)
//
// Exit codes: 0 clean, 1 findings, 2 usage or I/O error. The self-scan runs
// as a ctest case (label `lint`) and as the CI `lint` stage, so a violation
// fails the build exactly like a failing test.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/repo_scan.h"
#include "report/json.h"

namespace {

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--root DIR] [--format=text|json] [--out FILE]"
               " [--extra FILE ...] [--list-rules]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string format = "text";
  std::string out_path;
  std::vector<std::string> extra_files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](std::string* dst) {
      if (i + 1 >= argc) return false;
      *dst = argv[++i];
      return true;
    };
    if (arg == "--root") {
      if (!value(&root)) return usage(argv[0]);
    } else if (arg == "--format=text") {
      format = "text";
    } else if (arg == "--format=json") {
      format = "json";
    } else if (arg == "--format") {
      if (!value(&format)) return usage(argv[0]);
    } else if (arg == "--out") {
      if (!value(&out_path)) return usage(argv[0]);
    } else if (arg == "--extra") {
      std::string f;
      if (!value(&f)) return usage(argv[0]);
      extra_files.push_back(f);
    } else if (arg == "--list-rules") {
      for (int r = 0; r < kkt::lint::kRuleCount; ++r) {
        std::cout << kkt::lint::rule_name(
                         static_cast<kkt::lint::RuleId>(r))
                  << "\n";
      }
      return 0;
    } else {
      return usage(argv[0]);
    }
  }
  if (format != "text" && format != "json") return usage(argv[0]);

  kkt::lint::RepoReport report;
  try {
    report = kkt::lint::scan_repo(root);
    for (const std::string& path : extra_files) {
      std::ifstream in(path, std::ios::binary);
      if (!in) {
        std::cerr << "kkt_lint: cannot read --extra file " << path << "\n";
        return 2;
      }
      std::ostringstream ss;
      ss << in.rdbuf();
      // Extra files get every content rule: they are scratch probes used
      // to verify the gate trips, not policy-classified repo files.
      kkt::lint::FileClass cls;
      cls.header = path.size() > 2 && path.rfind(".h") == path.size() - 2;
      cls.determinism = true;
      cls.hot_path = true;
      auto found = kkt::lint::scan_file(path, ss.str(), cls, {},
                                        &report.stats);
      report.findings.insert(report.findings.end(), found.begin(),
                             found.end());
      ++report.files_scanned;
    }
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
  std::sort(report.findings.begin(), report.findings.end(),
            kkt::lint::finding_less);

  const kkt::report::JsonValue json = kkt::lint::findings_to_json(
      report.findings, report.files_scanned, report.stats);
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "kkt_lint: cannot write " << out_path << "\n";
      return 2;
    }
    out << kkt::report::json_serialize(json);
  }
  if (format == "json") {
    std::cout << kkt::report::json_serialize(json);
  } else {
    std::cout << kkt::lint::findings_to_text(
        report.findings, report.files_scanned, report.stats);
  }
  return report.findings.empty() ? 0 : 1;
}
